//! 3SAT → Clique: the textbook NP-hardness reduction (paper §4), which is
//! also where the *partitioned* clique structure of §2.3 comes from.
//!
//! For a formula with m clauses, build one vertex per (clause, literal)
//! occurrence; connect two vertices iff they come from different clauses
//! and their literals are non-contradictory. The graph has an m-clique iff
//! the formula is satisfiable — and because any clique takes at most one
//! vertex per clause, the clause blocks form exactly the vertex partition
//! of PARTITIONED CLIQUE.

use lb_engine::{Budget, Outcome, RunStats};
use lb_graph::Graph;
use lb_sat::{CnfFormula, Lit};

/// The reduction output: the graph, the target clique size (= number of
/// clauses), the partition into clause blocks, and each vertex's literal.
#[derive(Clone, Debug)]
pub struct CliqueInstance {
    /// The compatibility graph.
    pub graph: Graph,
    /// Target clique size k = number of clauses.
    pub k: usize,
    /// `blocks[c]` = vertex ids of clause c's literal occurrences.
    pub blocks: Vec<Vec<usize>>,
    /// `literal[v]` = the literal vertex v stands for.
    pub literal: Vec<Lit>,
}

/// Builds the compatibility graph of a CNF formula.
pub fn reduce(f: &CnfFormula) -> CliqueInstance {
    let mut literal: Vec<Lit> = Vec::new();
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for clause in f.clauses() {
        let mut block = Vec::with_capacity(clause.len());
        for &l in clause {
            block.push(literal.len());
            literal.push(l);
        }
        blocks.push(block);
    }
    let n = literal.len();
    let mut graph = Graph::new(n);
    for (c1, b1) in blocks.iter().enumerate() {
        for b2 in blocks.iter().skip(c1 + 1) {
            for &u in b1 {
                for &v in b2 {
                    if literal[u] != literal[v].negated() {
                        graph.add_edge(u, v);
                    }
                }
            }
        }
    }
    CliqueInstance {
        graph,
        k: f.num_clauses(),
        blocks,
        literal,
    }
}

/// Maps an m-clique of the compatibility graph back to a satisfying
/// assignment (unconstrained variables default to false).
pub fn clique_to_assignment(f: &CnfFormula, inst: &CliqueInstance, clique: &[usize]) -> Vec<bool> {
    let mut assignment = vec![false; f.num_vars()];
    for &v in clique {
        let l = inst.literal[v];
        assignment[l.var()] = l.is_positive();
    }
    assignment
}

/// Decides satisfiability through the clique instance (brute-force clique
/// search on the compatibility graph): `Sat(assignment)`, `Unsat`, or
/// `Exhausted` with the clique search's counters.
pub fn decide_via_clique(f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
    if f.num_clauses() == 0 {
        return (Outcome::Sat(vec![false; f.num_vars()]), RunStats::default());
    }
    let inst = reduce(f);
    let (out, stats) = lb_graphalg::clique::find_clique(&inst.graph, inst.k, budget);
    (
        out.map(|clique| clique_to_assignment(f, &inst, &clique)),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_sat::{brute, generators};

    fn decide_u(f: &CnfFormula) -> Option<Vec<bool>> {
        decide_via_clique(f, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn brute_sat(f: &CnfFormula) -> bool {
        brute::solve(f, &Budget::unlimited()).0.is_sat()
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        for seed in 0..15u64 {
            let f = generators::random_ksat(6, 10, 3, seed);
            let expect = brute_sat(&f);
            let got = decide_u(&f);
            assert_eq!(got.is_some(), expect, "seed {seed}");
            if let Some(a) = got {
                assert!(f.eval(&a), "seed {seed}");
            }
        }
    }

    #[test]
    fn graph_shape_is_linear_in_formula() {
        let f = generators::random_ksat(10, 25, 3, 1);
        let inst = reduce(&f);
        assert_eq!(inst.graph.num_vertices(), 3 * 25);
        assert_eq!(inst.k, 25);
        assert_eq!(inst.blocks.len(), 25);
        // No edges inside a block.
        for block in &inst.blocks {
            for (i, &u) in block.iter().enumerate() {
                for &v in &block[i + 1..] {
                    assert!(!inst.graph.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn contradictory_literals_not_adjacent() {
        use lb_sat::Lit;
        let f = CnfFormula::from_clauses(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        let inst = reduce(&f);
        assert_eq!(inst.graph.num_edges(), 0);
        assert!(decide_u(&f).is_none());
    }

    #[test]
    fn partitioned_structure_feeds_subiso() {
        // The blocks are a PARTITIONED CLIQUE instance (§2.3): solve it
        // with the partitioned subgraph isomorphism solver and get the
        // same answer.
        for seed in 0..8u64 {
            let f = generators::random_ksat(5, 8, 3, seed);
            let inst = reduce(&f);
            let pattern = lb_graph::generators::clique(inst.k);
            let via_subiso = lb_graphalg::subiso::partitioned_subgraph_iso(
                &pattern,
                &inst.graph,
                &inst.blocks,
                &Budget::unlimited(),
            )
            .0
            .unwrap_decided();
            assert_eq!(via_subiso.is_some(), brute_sat(&f), "seed {seed}");
            if let Some(m) = via_subiso {
                let a = clique_to_assignment(&f, &inst, &m);
                assert!(f.eval(&a), "seed {seed}");
            }
        }
    }
}
