//! Property tests for the reductions: YES↔YES preservation and valid
//! solution mapping on random instances — the machine-checkable content of
//! the paper's lower-bound proofs.

use lb_engine::Budget;
use lb_reductions::{
    clique_to_csp, clique_to_special, clique_vc, domset_to_csp, fourdomains, sat_to_clique,
    sat_to_coloring, sat_to_csp, sat_to_ov,
};
use lb_sat::{brute, generators as sgen, CnfFormula};
use proptest::prelude::*;

fn brute_sat(f: &CnfFormula) -> bool {
    brute::solve(f, &Budget::unlimited()).0.is_sat()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 3SAT ↔ CSP: equisatisfiable, model counts equal, solutions map.
    #[test]
    fn sat_csp_roundtrip(n in 3usize..8, m in 3usize..20, seed in 0u64..10_000) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        let inst = sat_to_csp::reduce(&f);
        prop_assert_eq!(
            lb_csp::solver::count(&inst, &Budget::unlimited()).0.unwrap_sat(),
            brute::count(&f, &Budget::unlimited()).0.unwrap_sat()
        );
        if let Some(s) = lb_csp::solver::solve(&inst, &Budget::unlimited()).0.unwrap_decided() {
            prop_assert!(f.eval(&sat_to_csp::solution_back(&s)));
        }
    }

    /// 3SAT → 3-coloring: equisatisfiable, colorings decode to models.
    #[test]
    fn sat_coloring_roundtrip(n in 3usize..6, m in 3usize..12, seed in 0u64..10_000) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        prop_assert_eq!(
            sat_to_coloring::decide_via_coloring(&f, &Budget::unlimited()).0.unwrap_sat(),
            brute_sat(&f)
        );
    }

    /// 3SAT → Clique: equisatisfiable, cliques decode to models.
    #[test]
    fn sat_clique_roundtrip(n in 3usize..7, m in 2usize..9, seed in 0u64..10_000) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        let got = sat_to_clique::decide_via_clique(&f, &Budget::unlimited()).0.unwrap_decided();
        prop_assert_eq!(got.is_some(), brute_sat(&f));
        if let Some(a) = got {
            prop_assert!(f.eval(&a));
        }
    }

    /// CNF-SAT → OV: equisatisfiable with decoded assignments.
    #[test]
    fn sat_ov_roundtrip(n in 3usize..10, m in 3usize..20, seed in 0u64..10_000) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        let got = sat_to_ov::decide_via_ov(&f, &Budget::unlimited()).0.unwrap_decided();
        prop_assert_eq!(got.is_some(), brute_sat(&f));
        if let Some(a) = got {
            prop_assert!(f.eval(&a));
        }
    }

    /// Clique → CSP / Special-CSP / VertexCover: all four routes agree.
    #[test]
    fn clique_routes_agree(n in 4usize..9, p in 0.3f64..0.8, seed in 0u64..10_000, k in 2usize..4) {
        let g = lb_graph::generators::gnp(n, p, seed);
        let direct = lb_graphalg::clique::find_clique(&g, k, &Budget::unlimited()).0.is_sat();
        prop_assert_eq!(
            clique_to_csp::has_clique_via_csp(&g, k, &Budget::unlimited()).0.is_sat(),
            direct
        );
        prop_assert_eq!(
            clique_to_special::has_clique_via_special(&g, k, &Budget::unlimited()).0.is_sat(),
            direct
        );
        prop_assert_eq!(
            clique_vc::has_clique_via_vertex_cover(&g, k, &Budget::unlimited()).0.is_sat(),
            direct
        );
    }

    /// Dominating set → CSP (plain and grouped): equisolvable with valid
    /// decoded dominating sets.
    #[test]
    fn domset_csp_roundtrip(n in 3usize..7, p in 0.2f64..0.6, seed in 0u64..10_000) {
        let g = lb_graph::generators::gnp(n, p, seed);
        let t = 2usize;
        let direct = lb_graphalg::domset::find_dominating_set_branching(&g, t, &Budget::unlimited())
            .0
            .is_sat();
        let inst = domset_to_csp::reduce(&g, t);
        let sol = lb_csp::solver::solve(&inst, &Budget::unlimited()).0.unwrap_decided();
        prop_assert_eq!(sol.is_some(), direct);
        if let Some(s) = sol {
            prop_assert!(g.is_dominating_set(&domset_to_csp::solution_back(t, &s)));
        }
        let grouped = domset_to_csp::reduce_grouped(&g, t, 2);
        let gsol = lb_csp::solver::solve(&grouped, &Budget::unlimited()).0.unwrap_decided();
        prop_assert_eq!(gsol.is_some(), direct);
        if let Some(s) = gsol {
            prop_assert!(
                g.is_dominating_set(&domset_to_csp::solution_back_grouped(&g, t, 2, &s))
            );
        }
    }

    /// The §2 translations preserve solution counts.
    #[test]
    fn fourdomain_counts(n in 3usize..6, p in 0.3f64..0.8, d in 2usize..4, seed in 0u64..10_000) {
        let g = lb_graph::generators::gnp(n, p, seed);
        let inst = lb_csp::generators::random_binary_csp(&g, d, 0.4, seed);
        if inst.constraints.is_empty() {
            return Ok(());
        }
        let direct = lb_csp::solver::bruteforce::count(&inst, &Budget::unlimited())
            .0
            .unwrap_sat();
        // CSP → structures.
        let (_, a, b) = lb_structure::convert::csp_to_structures(&inst);
        prop_assert_eq!(
            lb_structure::hom::count_homomorphisms(&a, &b, &Budget::unlimited()).0.unwrap_sat(),
            direct
        );
        // CSP → subiso (decision).
        let (pattern, host, classes) = fourdomains::binary_csp_to_partitioned_subiso(&inst);
        let found =
            lb_graphalg::subiso::partitioned_subgraph_iso(&pattern, &host, &classes, &Budget::unlimited())
                .0
                .unwrap_decided();
        prop_assert_eq!(found.is_some(), direct > 0);
    }

    /// Every budgeted reduction route: a tiny budget yields `Exhausted`,
    /// never a wrong verdict.
    #[test]
    fn tiny_budget_never_lies(n in 4usize..8, p in 0.3f64..0.7, seed in 0u64..10_000) {
        let g = lb_graph::generators::gnp(n, p, seed);
        let b = Budget::ticks(0);
        prop_assert!(clique_to_csp::has_clique_via_csp(&g, 3, &b).0.is_exhausted());
        prop_assert!(clique_to_special::has_clique_via_special(&g, 3, &b).0.is_exhausted());
        prop_assert!(clique_vc::has_clique_via_vertex_cover(&g, 3, &b).0.is_exhausted());
        prop_assert!(domset_to_csp::has_dominating_set_via_csp(&g, 2, &b).0.is_exhausted());
    }
}
