//! Integration: Theorems 3.1–3.3 across query families.
//!
//! For each query family: compute ρ* exactly, build the worst-case witness
//! database, join it with both engines, and verify (a) the bound is met
//! with equality by the witness, (b) the bound is never violated on random
//! databases, (c) both engines agree everywhere.

use lowerbounds::engine::Budget;
use lowerbounds::join::{agm, binary, generators as jgen, wcoj, JoinQuery};
use lowerbounds::lp::Rational;

fn families() -> Vec<(JoinQuery, Rational)> {
    vec![
        (JoinQuery::triangle(), Rational::new(3, 2)),
        (JoinQuery::cycle(4), Rational::new(2, 1)),
        (JoinQuery::cycle(5), Rational::new(5, 2)),
        (JoinQuery::star(3), Rational::new(3, 1)),
        (JoinQuery::loomis_whitney(3), Rational::new(3, 2)),
        (JoinQuery::loomis_whitney(4), Rational::new(4, 3)),
    ]
}

#[test]
fn rho_star_values_are_exact() {
    for (q, expected) in families() {
        assert_eq!(agm::rho_star(&q).unwrap(), expected, "query {q:?}");
    }
}

#[test]
fn worst_case_witnesses_meet_the_bound() {
    for (q, _) in families() {
        for n in [16u64, 81, 256] {
            let (db, predicted) = agm::worst_case_database(&q, n).unwrap();
            assert!(db.max_table_size() as u64 <= n, "{q:?} n={n}");
            let count = wcoj::count(&q, &db, None, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert_eq!(u128::from(count), predicted, "{q:?} n={n}");
            assert!(
                agm::agm_bound_holds(&q, &db, predicted).unwrap(),
                "{q:?} n={n}"
            );
        }
    }
}

#[test]
fn agm_bound_never_violated_on_random_databases() {
    for (q, _) in families() {
        for seed in 0..4u64 {
            let db = jgen::random_database(&q, 40, 8, seed);
            let count = wcoj::count(&q, &db, None, &Budget::unlimited())
                .unwrap()
                .0
                .unwrap_sat();
            assert!(
                agm::agm_bound_holds(&q, &db, u128::from(count)).unwrap(),
                "{q:?} seed {seed}: answer {count} exceeds AGM bound"
            );
        }
    }
}

#[test]
fn both_engines_agree_on_every_family() {
    for (q, _) in families() {
        for seed in 0..3u64 {
            let db = jgen::random_database(&q, 30, 6, seed);
            let bu = Budget::unlimited();
            let a = wcoj::join(&q, &db, None, &bu).unwrap().0.unwrap_sat();
            let (b, _) = binary::left_deep_join(&q, &db, &bu).unwrap();
            assert_eq!(a, b.unwrap_sat(), "{q:?} seed {seed}");
        }
    }
}

#[test]
fn boolean_emptiness_agrees_with_count() {
    for (q, _) in families() {
        for seed in 10..13u64 {
            let db = jgen::random_database(&q, 20, 10, seed);
            let bu = Budget::unlimited();
            let empty = lowerbounds::join::boolean::is_answer_empty(&q, &db, &bu)
                .unwrap()
                .0
                .unwrap_sat();
            let count = wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat();
            assert_eq!(empty, count == 0, "{q:?} seed {seed}");
        }
    }
}
