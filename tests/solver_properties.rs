//! Property-based integration tests (proptest): the core invariants of the
//! workspace, checked on randomized inputs across crate boundaries.

use proptest::prelude::*;

use lowerbounds::csp::solver::{backtracking, bruteforce, treewidth_dp, BacktrackConfig};
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::triangle;
use lowerbounds::join::{agm, wcoj, JoinQuery};
use lowerbounds::sat::{brute, generators as sgen, DpllConfig, DpllSolver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three CSP solvers count the same number of solutions.
    #[test]
    fn csp_solvers_agree(seed in 0u64..10_000, n in 4usize..8, d in 2usize..4, p in 0.2f64..0.6) {
        let g = generators::gnp(n, p, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, d, 0.4, seed);
        let bu = Budget::unlimited();
        let expect = bruteforce::count(&inst, &bu).0.unwrap_sat();
        let (bt, _) = backtracking::count(&inst, BacktrackConfig::default(), &bu);
        prop_assert_eq!(bt.unwrap_sat(), expect);
        let dp = treewidth_dp::solve_auto(&inst, &bu).0.unwrap_sat();
        prop_assert_eq!(dp.count, expect);
        if expect > 0 {
            prop_assert!(inst.eval(&dp.solution.unwrap()));
        }
    }

    /// DPLL agrees with brute force on random 3SAT.
    #[test]
    fn dpll_sound_and_complete(seed in 0u64..10_000, n in 4usize..9, m in 5usize..30) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        let bu = Budget::unlimited();
        let expect = brute::solve(&f, &bu).0.is_sat();
        let (model, _) = DpllSolver::new(DpllConfig::default()).solve(&f, &bu);
        let model = model.unwrap_decided();
        prop_assert_eq!(model.is_some(), expect);
        if let Some(a) = model {
            prop_assert!(f.eval(&a));
        }
    }

    /// The AGM bound holds on arbitrary random triangle databases, and the
    /// join output is correct vs the nested-loop oracle.
    #[test]
    fn agm_bound_and_join_correctness(seed in 0u64..10_000, rows in 5usize..30, dom in 3u64..10) {
        let q = JoinQuery::triangle();
        let db = lowerbounds::join::generators::random_binary_database(&q, rows, dom, seed);
        let bu = Budget::unlimited();
        let fast = wcoj::join(&q, &db, None, &bu).unwrap().0.unwrap_sat();
        let slow = wcoj::nested_loop_join(&q, &db, &bu).unwrap().0.unwrap_sat();
        prop_assert_eq!(&fast, &slow);
        prop_assert!(agm::agm_bound_holds(&q, &db, fast.len() as u128).unwrap());
    }

    /// Triangle detectors agree on random graphs.
    #[test]
    fn triangle_detectors_agree(seed in 0u64..10_000, n in 3usize..25, p in 0.05f64..0.5) {
        let g = generators::gnp(n, p, seed);
        let bu = Budget::unlimited();
        let a = triangle::find_triangle_naive(&g, &bu).0.is_sat();
        let b = triangle::find_triangle_matmul(&g, &bu).0.is_sat();
        let c = triangle::find_triangle_ayz(&g, &bu).0.is_sat();
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
        prop_assert_eq!(a, triangle::count_triangles(&g, &bu).0.unwrap_sat() > 0);
    }

    /// Tree decompositions from any heuristic validate and never beat the
    /// exact treewidth.
    #[test]
    fn decompositions_valid_and_above_exact(seed in 0u64..10_000, n in 3usize..11, p in 0.15f64..0.6) {
        let g = generators::gnp(n, p, seed);
        let (w, td) = lowerbounds::graph::treewidth::treewidth_upper_bound(&g);
        prop_assert!(td.validate(&g).is_ok());
        let exact = lowerbounds::graph::treewidth::treewidth_exact(&g);
        prop_assert!(w >= exact);
        // Nice form stays valid and has the same width or less... (width
        // can only be preserved: morphing adds no larger bags).
        let nice = td.to_nice(n);
        prop_assert!(nice.validate().is_ok());
        prop_assert_eq!(nice.width(), td.width());
    }

    /// 2SAT linear solver agrees with DPLL.
    #[test]
    fn twosat_agrees_with_dpll(seed in 0u64..10_000, n in 2usize..10, m in 2usize..25) {
        let f = sgen::random_ksat(n, m, 2.min(n), seed);
        let bu = Budget::unlimited();
        let fast = lowerbounds::sat::solve_2sat(&f, &bu).0.unwrap_decided();
        let (slow, _) = DpllSolver::new(DpllConfig::default()).solve(&f, &bu);
        prop_assert_eq!(fast.is_some(), slow.unwrap_decided().is_some());
        if let Some(a) = fast {
            prop_assert!(f.eval(&a));
        }
    }

    /// Cores: hom-equivalent to the original and themselves cores.
    #[test]
    fn core_invariants(seed in 0u64..10_000, n in 2usize..7, p in 0.2f64..0.8) {
        use lowerbounds::structure::{compute_core, is_core, Structure};
        use lowerbounds::structure::core::hom_equivalent;
        let g = generators::gnp(n, p, seed);
        let s = Structure::from_graph(&g);
        let bu = Budget::unlimited();
        let (core, kept) = compute_core(&s, &bu).0.unwrap_sat();
        prop_assert!(is_core(&core, &bu).0.unwrap_sat());
        prop_assert!(hom_equivalent(&s, &core, &bu).0.unwrap_sat());
        prop_assert!(kept.len() <= n);
    }
}
