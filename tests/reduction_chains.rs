//! Integration: the lower-bound reductions chained end to end, solved by
//! the algorithms whose optimality they certify.

use lowerbounds::csp::solver::treewidth_dp;
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::graphalg::{clique, domset};
use lowerbounds::reductions::{
    clique_to_csp, clique_to_special, domset_to_csp, sat_to_coloring, sat_to_csp, sat_to_ov,
};
use lowerbounds::sat::{brute, generators as sgen};

#[test]
fn sat_through_three_routes() {
    // 3SAT decided directly, via CSP, via 3-coloring, and via OV — all
    // four answers must coincide.
    for seed in 0..8u64 {
        let f = sgen::random_ksat(6, 22, 3, seed);
        let bu = Budget::unlimited();
        let direct = brute::solve(&f, &bu).0.is_sat();

        let csp = sat_to_csp::reduce(&f);
        assert_eq!(
            lowerbounds::csp::solver::solve(&csp, &bu).0.is_sat(),
            direct,
            "CSP route, seed {seed}"
        );

        assert_eq!(
            sat_to_coloring::decide_via_coloring(&f, &bu).0.unwrap_sat(),
            direct,
            "coloring route, seed {seed}"
        );

        let ov = sat_to_ov::decide_via_ov(&f, &bu).0.unwrap_decided();
        assert_eq!(ov.is_some(), direct, "OV route, seed {seed}");
        if let Some(a) = ov {
            assert!(f.eval(&a), "seed {seed}");
        }
    }
}

#[test]
fn clique_through_csp_and_special_routes() {
    for seed in 0..6u64 {
        let g = generators::gnp(10, 0.5, seed);
        for k in 3..=4 {
            let bu = Budget::unlimited();
            let direct = clique::find_clique(&g, k, &bu).0.is_sat();
            assert_eq!(
                clique_to_csp::has_clique_via_csp(&g, k, &bu).0.is_sat(),
                direct,
                "CSP route, seed {seed}, k {k}"
            );
            assert_eq!(
                clique_to_special::has_clique_via_special(&g, k, &bu)
                    .0
                    .is_sat(),
                direct,
                "special route, seed {seed}, k {k}"
            );
            // And the Nešetřil–Poljak matrix-multiplication route.
            assert_eq!(
                clique::find_clique_neipol(&g, k, &bu).0.is_sat(),
                direct,
                "NP route, seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn theorem_7_2_pipeline_dominating_set_via_treewidth_dp() {
    // The SETH-tightness argument, executed: t-DomSet → CSP of treewidth t,
    // solved by Freuder's DP (the algorithm the theorem says is optimal),
    // for both the plain and the grouped form.
    for seed in 0..5u64 {
        let g = generators::gnp(6, 0.35, seed);
        let t = 2;
        let bu = Budget::unlimited();
        let direct = domset::find_dominating_set_branching(&g, t, &bu).0.is_sat();

        let inst = domset_to_csp::reduce(&g, t);
        let dp = treewidth_dp::solve_auto(&inst, &bu).0.unwrap_sat();
        assert_eq!(dp.solution.is_some(), direct, "plain, seed {seed}");
        if let Some(s) = dp.solution {
            let ds = domset_to_csp::solution_back(t, &s);
            assert!(g.is_dominating_set(&ds));
        }

        let grouped = domset_to_csp::reduce_grouped(&g, t, 2);
        let dp2 = treewidth_dp::solve_auto(&grouped, &bu).0.unwrap_sat();
        assert_eq!(dp2.solution.is_some(), direct, "grouped, seed {seed}");
        if let Some(s) = dp2.solution {
            let ds = domset_to_csp::solution_back_grouped(&g, t, 2, &s);
            assert!(g.is_dominating_set(&ds));
        }
    }
}

#[test]
fn grouped_reduction_trades_treewidth_for_domain() {
    // The Theorem 7.2 trick quantified: grouping divides the treewidth by g
    // and raises the domain to n^g.
    let g = generators::gnp(5, 0.5, 3);
    let t = 4;
    let plain = domset_to_csp::reduce(&g, t);
    let grouped = domset_to_csp::reduce_grouped(&g, t, 2);
    let tw_plain = lowerbounds::graph::treewidth::treewidth_upper_bound(&plain.primal_graph()).0;
    let tw_grouped =
        lowerbounds::graph::treewidth::treewidth_upper_bound(&grouped.primal_graph()).0;
    assert_eq!(tw_plain, 4);
    assert_eq!(tw_grouped, 2);
    assert_eq!(grouped.domain_size, 5 * 5);
}

#[test]
fn core_computation_feeds_theorem_5_3() {
    // Theorem 5.3's parameter: tw(core(A)). For bipartite pattern graphs
    // the core collapses to an edge, so HOM(A, _) is easy even though A
    // itself has large treewidth.
    use lowerbounds::structure::{compute_core, Structure};
    let bu = Budget::unlimited();
    let grid = generators::grid(3, 4);
    let a = Structure::from_graph(&grid);
    let (core, _) = compute_core(&a, &bu).0.unwrap_sat();
    assert_eq!(core.universe(), 2);
    let tw_core = lowerbounds::graph::treewidth::treewidth_exact(&core.gaifman_graph());
    assert_eq!(tw_core, 1);
    // The odd cycle is its own core: the parameter stays 2.
    let c5 = Structure::from_graph(&generators::cycle(5));
    let (core5, _) = compute_core(&c5, &bu).0.unwrap_sat();
    assert_eq!(core5.universe(), 5);
}
