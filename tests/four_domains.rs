//! Integration: the §2 four-domain equivalences, end to end.
//!
//! One instance is pushed through all four formalisms — join query, CSP,
//! partitioned subgraph isomorphism, relational-structure homomorphism —
//! and every route must report the same solution count.

use lowerbounds::csp::solver::bruteforce;
use lowerbounds::engine::Budget;
use lowerbounds::graphalg::subiso::partitioned_subgraph_iso;
use lowerbounds::join::{generators as jgen, wcoj, JoinQuery};
use lowerbounds::reductions::fourdomains;
use lowerbounds::structure::convert as sconvert;
use lowerbounds::structure::hom;

#[test]
fn all_four_domains_agree_on_triangle_instances() {
    for seed in 0..6u64 {
        // Domain 1: join query + database.
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, 18, 6, seed);
        let bu = Budget::unlimited();
        let join_count = wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat();

        // Domain 2: CSP.
        let (csp, _values) = fourdomains::join_to_csp(&q, &db).unwrap();
        let csp_count = bruteforce::count(&csp, &bu).0.unwrap_sat();
        assert_eq!(csp_count, join_count, "CSP vs join, seed {seed}");

        // Domain 3: relational structures / homomorphism.
        let (_, a, b) = sconvert::csp_to_structures(&csp);
        let hom_count = hom::count_homomorphisms(&a, &b, &bu).0.unwrap_sat();
        assert_eq!(hom_count, join_count, "hom vs join, seed {seed}");

        // Domain 4: partitioned subgraph isomorphism (decision only — the
        // mapping is a bijection on solutions, here we check emptiness).
        let (pattern, host, classes) = fourdomains::binary_csp_to_partitioned_subiso(&csp);
        let subiso = partitioned_subgraph_iso(&pattern, &host, &classes, &bu)
            .0
            .unwrap_decided();
        assert_eq!(
            subiso.is_some(),
            join_count > 0,
            "subiso vs join, seed {seed}"
        );
        if let Some(f) = subiso {
            let assignment = fourdomains::subiso_solution_to_assignment(csp.domain_size, &f);
            assert!(csp.eval(&assignment), "seed {seed}");
        }
    }
}

#[test]
fn graph_homomorphism_equals_csp_on_cycles() {
    // Hom(C5 → K3) = proper 3-colorings of C5 = 30, via all routes.
    let c5 = lowerbounds::graph::generators::cycle(5);
    let k3 = lowerbounds::graph::generators::clique(3);

    let bu = Budget::unlimited();
    let inst = sconvert::graph_hom_to_csp(&c5, &k3);
    assert_eq!(bruteforce::count(&inst, &bu).0.unwrap_sat(), 30);

    let sa = lowerbounds::structure::Structure::from_graph(&c5);
    let sb = lowerbounds::structure::Structure::from_graph(&k3);
    assert_eq!(hom::count_homomorphisms(&sa, &sb, &bu).0.unwrap_sat(), 30);

    // And through the join-query domain.
    let (q, db) = fourdomains::csp_to_join(&inst);
    assert_eq!(wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat(), 30);
}

#[test]
fn csp_to_join_and_back_preserves_counts() {
    for seed in 0..6u64 {
        let g = lowerbounds::graph::generators::k_tree(2, 7, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, 3, 0.3, seed);
        let bu = Budget::unlimited();
        let direct = bruteforce::count(&inst, &bu).0.unwrap_sat();
        let (q, db) = fourdomains::csp_to_join(&inst);
        let via_join = wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat();
        assert_eq!(via_join, direct, "seed {seed}");
        let (back, _) = fourdomains::join_to_csp(&q, &db).unwrap();
        assert_eq!(
            bruteforce::count(&back, &bu).0.unwrap_sat(),
            direct,
            "seed {seed}"
        );
    }
}
