//! The static-analysis gate, wired into plain `cargo test`.
//!
//! This test lints every `.rs` file in the workspace with `lb-lint` and
//! fails if any rule fires, so a panicking call or a lossy bound-arithmetic
//! cast cannot land without either a fix or a justified
//! `// lb-lint: allow(rule) -- reason` annotation. The same check runs as
//! `cargo run -p lb-lint` and in CI (`.github/workflows/ci.yml`).

use lb_lint::{default_workspace_root, lint_workspace, render_text, Config};

#[test]
fn workspace_is_lint_clean() {
    let root = default_workspace_root();
    let (violations, files) = lint_workspace(root, &Config::default())
        .unwrap_or_else(|e| panic!("lb-lint failed to walk {}: {e}", root.display()));
    assert!(
        files > 50,
        "lb-lint walked only {files} files from {} — wrong workspace root?",
        root.display()
    );
    assert!(
        violations.is_empty(),
        "lb-lint found violations (fix them or add `// lb-lint: allow(rule) -- reason`):\n{}",
        render_text(&violations)
    );
}
