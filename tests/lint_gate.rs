//! The static-analysis gate, wired into plain `cargo test`.
//!
//! This test lints every `.rs` file in the workspace with `lb-lint` — the
//! token rules R1–R7, the call-graph semantic rules R8–R10, the dataflow
//! rules R11–R13, and the effect rules R14–R16 — and fails if any rule
//! fires, so a panicking call, an unbudgeted solver loop, a silent
//! checkpoint-schema change, an uncharged frontier, a swallowed `Result`,
//! a `Send`-hostile state field, a lock held across fsync, an ack that
//! outruns its spool save, or an untimed socket read
//! cannot land without either a fix or a justified
//! `// lb-lint: allow(rule) -- reason` annotation. The same check
//! runs as `cargo run -p lb-lint` and in CI (`.github/workflows/ci.yml`).

use lb_lint::{analyze_workspace, default_workspace_root, render_text, Config};

#[test]
fn workspace_is_lint_clean() {
    let root = default_workspace_root();
    let analysis = analyze_workspace(root, &Config::default())
        .unwrap_or_else(|e| panic!("lb-lint failed to walk {}: {e}", root.display()));
    assert!(
        analysis.files_checked > 50,
        "lb-lint walked only {} files from {} — wrong workspace root?",
        analysis.files_checked,
        root.display()
    );
    assert!(
        analysis.violations.is_empty(),
        "lb-lint found violations (fix them or add `// lb-lint: allow(rule) -- reason`):\n{}",
        render_text(&analysis.violations)
    );
}

#[test]
fn semantic_analysis_actually_covers_the_solvers() {
    // A zero-violation result is only meaningful if the semantic layer saw
    // the workspace: the call graph must root at the real solver entry
    // points and traverse real loops and panic sites. These floors catch a
    // misconfigured path scope silently emptying a rule.
    let root = default_workspace_root();
    let analysis = analyze_workspace(root, &Config::default())
        .unwrap_or_else(|e| panic!("lb-lint failed to walk {}: {e}", root.display()));
    let stats = &analysis.stats;

    for expected in [
        "DpllSolver::solve",
        "DpllSolver::solve_resumable",
        "solve_2sat",
        "count_resumable",
        "count_triangles_resumable",
        "find_clique_resumable",
        // The server's slice executor: every scheduler-driven solver run
        // goes through it, so R8/R9 must treat it as a root.
        "solve_slice",
        "solve_to_verdict",
    ] {
        assert!(
            stats.root_names.iter().any(|n| n == expected),
            "`{expected}` is missing from the R8/R9 reachability roots; \
             roots found: {:?}",
            stats.root_names
        );
    }
    assert!(
        stats.reachable_fns >= 100,
        "only {} fns reachable from the roots — the call graph is too sparse",
        stats.reachable_fns
    );
    assert!(
        stats.loops_checked >= 100,
        "R8 examined only {} loops — solver_loop_paths likely misconfigured",
        stats.loops_checked
    );
    assert!(
        stats.panic_sites >= 50,
        "R9 saw only {} panic sites — site scanning likely broken",
        stats.panic_sites
    );
    assert_eq!(
        stats.families_checked, 5,
        "R10 must check every checkpoint family (dpll, csp-backtracking, \
         generic-join, triangle-scan, clique-enum)"
    );

    // The R11–R13 dataflow pass must have real coverage in every solver
    // crate: collection bindings tracked, `Result` sites examined, and
    // checkpoint state structs scanned. An empty entry means the dataflow
    // layer silently stopped seeing that crate.
    for name in ["sat", "csp", "join", "graphalg", "serve"] {
        let df = stats
            .dataflow
            .get(name)
            .unwrap_or_else(|| panic!("no dataflow coverage recorded for crate `{name}`"));
        assert!(
            df.collection_bindings > 0,
            "R11 tracked no collection bindings in `{name}`"
        );
        assert!(
            df.result_sites > 0,
            "R12 examined no `Result` sites in `{name}`"
        );
        assert!(
            df.state_structs > 0,
            "R13 scanned no checkpoint state structs in `{name}`"
        );
    }

    // Survival-layer floors. The serve crate's retry/quarantine paths are
    // where a swallowed spool `Result` silently loses a job, and its
    // scheduler/netfault state crosses thread boundaries — so R12/R13
    // coverage there must stay deep, not merely nonzero. The floors sit
    // well under current counts (199 result sites, 13 state structs at
    // the time of writing) but far above what a path-scope regression
    // would leave behind.
    let serve = &stats.dataflow["serve"];
    assert!(
        serve.result_sites >= 150,
        "R12 examined only {} `Result` sites in `serve` — spool/quarantine \
         I/O is no longer fully covered",
        serve.result_sites
    );
    assert!(
        serve.state_structs >= 10,
        "R13 scanned only {} state structs in `serve` — scheduler/netfault \
         shared state fell out of state_struct_paths",
        serve.state_structs
    );
    // The storm harness drives the survival layer from outside; its own
    // Result discipline (every spawn/connect/kill handled) is R12-checked.
    let chaos = &stats.dataflow["chaos"];
    assert!(
        chaos.result_sites >= 60,
        "R12 examined only {} `Result` sites in `chaos` — the storm \
         harness fell out of scope",
        chaos.result_sites
    );

    // Effect-layer floors (R14–R16). A zero-violation effect pass is only
    // meaningful if it saw the serve crate's real lock, durability, and
    // blocking sites; these sit well under current counts (11 lock, 14
    // durability, 24 blocking at the time of writing) but far above what
    // an `effect_paths` regression would leave behind.
    let fx = stats
        .effects
        .get("serve")
        .unwrap_or_else(|| panic!("no effect coverage recorded for crate `serve`"));
    assert!(
        fx.lock_sites >= 10,
        "R14 saw only {} lock sites in `serve` — scheduler/netfault \
         acquisitions fell out of effect_paths",
        fx.lock_sites
    );
    assert!(
        fx.durability_sites >= 5,
        "R15 saw only {} durability sites in `serve` — spool saves fell \
         out of effect_paths",
        fx.durability_sites
    );
    assert!(
        fx.blocking_sites >= 8,
        "R16 saw only {} blocking-I/O sites in `serve` — socket/file I/O \
         fell out of effect_paths",
        fx.blocking_sites
    );
}
