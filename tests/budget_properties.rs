//! Property tests for the engine layer's budget contract, across every
//! solver family: a budget may only ever cost *completeness* (the solver
//! says `Exhausted`), never *soundness* (a wrong `Sat`/`Unsat` verdict),
//! and raising the budget until the solver completes must reproduce the
//! brute-force answer with monotonically growing work counters.

use proptest::prelude::*;

use lowerbounds::csp::solver::{backtracking, bruteforce, treewidth_dp, BacktrackConfig};
use lowerbounds::engine::checkpoint::{Checkpoint, ResumableOutcome};
use lowerbounds::engine::{Budget, ExhaustReason, Outcome, RunStats};
use lowerbounds::graph::generators;
use lowerbounds::graphalg::clique;
use lowerbounds::join::{generators as jgen, wcoj, JoinQuery};
use lowerbounds::sat::{brute, generators as sgen, DpllConfig, DpllSolver};

/// Runs `solve` under doubling tick budgets until it completes, checking on
/// the way that (a) every verdict delivered under a partial budget matches
/// the oracle, and (b) the work counters grow monotonically with the
/// budget. Returns the final decided verdict.
fn doubling_budget_verdict<W>(
    mut solve: impl FnMut(&Budget) -> (Outcome<W>, RunStats),
    oracle: bool,
) -> bool {
    let mut ticks = 1u64;
    let mut prev_stats: Option<RunStats> = None;
    loop {
        let (out, stats) = solve(&Budget::ticks(ticks));
        if let Some(prev) = prev_stats {
            assert!(
                prev.le(&stats),
                "counters shrank when the budget grew: {prev:?} then {stats:?}"
            );
        }
        prev_stats = Some(stats);
        match out {
            Outcome::Sat(_) => {
                assert!(oracle, "budgeted run said Sat but the oracle says Unsat");
                return true;
            }
            Outcome::Unsat => {
                assert!(!oracle, "budgeted run said Unsat but the oracle says Sat");
                return false;
            }
            Outcome::Exhausted(_) => {
                ticks = ticks
                    .checked_mul(2)
                    .expect("budget overflow before completion");
            }
        }
    }
}

/// Asserts that a solver run under an already-expired wall-clock deadline
/// exhausted on its *first* counted operation — the deadline mirror of the
/// `Budget::ticks(0)` guarantee. The engine promises the first `spend`
/// consults the clock, so the run must stop with the `Deadline` reason
/// after at most one counted op.
fn assert_expired_deadline_exhausts<W: std::fmt::Debug>((out, stats): (Outcome<W>, RunStats)) {
    match out {
        Outcome::Exhausted(ExhaustReason::Deadline { .. }) => {}
        other => panic!("expired deadline did not exhaust with Deadline: {other:?}"),
    }
    assert!(
        stats.total_ops() <= 1,
        "expired deadline let {} ops through",
        stats.total_ops()
    );
}

/// A deadline that has already passed when the solver starts.
fn expired() -> Budget {
    Budget::deadline(std::time::Duration::ZERO)
}

/// The resume counterpart of [`doubling_budget_verdict`]: a budget split
/// into k slices, chained through checkpoints, must reproduce the one-shot
/// verdict and sum to the one-shot work counters. Checkpoints cross each
/// slice boundary through their byte encoding, as they would on disk.
fn sliced_budget_matches_one_shot<W: PartialEq + std::fmt::Debug, E: std::fmt::Debug>(
    mut run: impl FnMut(&Budget, Option<&Checkpoint>) -> Result<(ResumableOutcome<W>, RunStats), E>,
) {
    let (full, full_stats) = run(&Budget::unlimited(), None).expect("one-shot run errored");
    assert!(!full.is_suspended(), "suspended under an unlimited budget");
    for k in [2u64, 5, 16] {
        let slice_ticks = (full_stats.total_ops() / k).max(1);
        let mut from: Option<Checkpoint> = None;
        let mut summed = RunStats::default();
        let sliced = loop {
            let (out, stats) =
                run(&Budget::ticks(slice_ticks), from.as_ref()).expect("slice errored");
            summed.absorb(&stats);
            match out {
                ResumableOutcome::Suspended { checkpoint, .. } => {
                    let bytes = checkpoint.to_bytes();
                    from = Some(Checkpoint::from_bytes(&bytes).expect("round-trip failed"));
                }
                done => break done,
            }
        };
        assert_eq!(sliced, full, "k={k}: sliced verdict diverged from one-shot");
        assert_eq!(
            summed, full_stats,
            "k={k}: sliced stats diverged from one-shot"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every solver family: a wall-clock deadline that is already expired
    /// when the run starts exhausts on the first counted op (sat, csp,
    /// join, graphalg — mirrors the `ticks(0)` assertions below).
    #[test]
    fn expired_deadline_exhausts_on_first_op_every_family(
        seed in 0u64..10_000, n in 4usize..8,
    ) {
        // sat: DPLL and 2SAT.
        let f = sgen::random_ksat(n, 3 * n, 2, seed);
        assert_expired_deadline_exhausts(DpllSolver::default().solve(&f, &expired()));
        assert_expired_deadline_exhausts(lowerbounds::sat::solve_2sat(&f, &expired()));
        // csp: backtracking and Freuder's treewidth DP.
        let g = generators::gnp(n, 0.5, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, 2, 0.4, seed);
        assert_expired_deadline_exhausts(
            backtracking::solve(&inst, BacktrackConfig::default(), &expired()),
        );
        assert_expired_deadline_exhausts(treewidth_dp::solve_auto(&inst, &expired()));
        // join: generic WCOJ on the triangle query.
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, 3 * n, 5, seed);
        assert_expired_deadline_exhausts(
            wcoj::count(&q, &db, None, &expired()).expect("valid database"),
        );
        // graphalg: clique search.
        assert_expired_deadline_exhausts(clique::find_clique(&g, 3, &expired()));
    }

    /// DPLL: zero-tick budgets exhaust, doubling budgets converge to the
    /// brute-force verdict with monotone counters.
    #[test]
    fn dpll_budget_contract(seed in 0u64..10_000, n in 4usize..8, m in 5usize..24) {
        let f = sgen::random_ksat(n, m, 3.min(n), seed);
        let solver = DpllSolver::new(DpllConfig::default());
        prop_assert!(solver.solve(&f, &Budget::ticks(0)).0.is_exhausted());
        let oracle = brute::solve(&f, &Budget::unlimited()).0.is_sat();
        let verdict = doubling_budget_verdict(|b| solver.solve(&f, b), oracle);
        prop_assert_eq!(verdict, oracle);
    }

    /// CSP backtracking: same contract against the brute-force counter.
    #[test]
    fn csp_backtracking_budget_contract(
        seed in 0u64..10_000, n in 4usize..7, d in 2usize..4, p in 0.2f64..0.6,
    ) {
        let g = generators::gnp(n, p, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, d, 0.4, seed);
        let cfg = BacktrackConfig::default();
        prop_assert!(backtracking::solve(&inst, cfg, &Budget::ticks(0)).0.is_exhausted());
        let oracle = bruteforce::count(&inst, &Budget::unlimited()).0.unwrap_sat() > 0;
        let verdict = doubling_budget_verdict(|b| backtracking::solve(&inst, cfg, b), oracle);
        prop_assert_eq!(verdict, oracle);
    }

    /// Freuder's treewidth DP: `Sat` always carries the full count, so the
    /// doubling run must converge to the brute-force count exactly.
    #[test]
    fn treewidth_dp_budget_contract(
        seed in 0u64..10_000, n in 4usize..7, d in 2usize..4, p in 0.2f64..0.6,
    ) {
        let g = generators::gnp(n, p, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, d, 0.4, seed);
        prop_assert!(treewidth_dp::solve_auto(&inst, &Budget::ticks(0)).0.is_exhausted());
        let oracle = bruteforce::count(&inst, &Budget::unlimited()).0.unwrap_sat();
        let mut counts = Vec::new();
        let verdict = doubling_budget_verdict(
            |b| {
                let (out, stats) = treewidth_dp::solve_auto(&inst, b);
                let out = match out {
                    Outcome::Sat(r) => {
                        counts.push(r.count);
                        if r.count > 0 { Outcome::Sat(()) } else { Outcome::Unsat }
                    }
                    Outcome::Unsat => Outcome::Unsat,
                    Outcome::Exhausted(r) => Outcome::Exhausted(r),
                };
                (out, stats)
            },
            oracle > 0,
        );
        prop_assert_eq!(verdict, oracle > 0);
        prop_assert_eq!(counts.last().copied(), Some(oracle));
    }

    /// Generic Join: a completed budgeted count equals the unlimited count;
    /// zero ticks always exhaust.
    #[test]
    fn wcoj_budget_contract(seed in 0u64..10_000, rows in 5usize..25, dom in 3u64..9) {
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, rows, dom, seed);
        prop_assert!(
            wcoj::count(&q, &db, None, &Budget::ticks(0)).unwrap().0.is_exhausted()
        );
        let oracle = wcoj::count(&q, &db, None, &Budget::unlimited())
            .unwrap()
            .0
            .unwrap_sat();
        let mut counts = Vec::new();
        let verdict = doubling_budget_verdict(
            |b| {
                let (out, stats) = wcoj::count(&q, &db, None, b).unwrap();
                let out = match out {
                    Outcome::Sat(c) => {
                        counts.push(c);
                        if c > 0 { Outcome::Sat(()) } else { Outcome::Unsat }
                    }
                    Outcome::Unsat => Outcome::Unsat,
                    Outcome::Exhausted(r) => Outcome::Exhausted(r),
                };
                (out, stats)
            },
            oracle > 0,
        );
        prop_assert_eq!(verdict, oracle > 0);
        prop_assert_eq!(counts.last().copied(), Some(oracle));
    }

    /// Every resumable solver family: a budget split into k ∈ {2, 5, 16}
    /// slices, chained via checkpoints, reproduces the one-shot verdict
    /// and sums to the one-shot work counters.
    #[test]
    fn sliced_budgets_match_one_shot_every_family(
        seed in 0u64..10_000, n in 4usize..8, p in 0.3f64..0.7,
    ) {
        // sat: DPLL.
        let f = sgen::random_ksat(n, 3 * n, 3.min(n), seed);
        let solver = DpllSolver::default();
        sliced_budget_matches_one_shot(|b, from| solver.solve_resumable(&f, b, from));
        // csp: backtracking, decision and counting.
        let g = generators::gnp(n, p, seed);
        let inst = lowerbounds::csp::generators::random_binary_csp(&g, 2, 0.4, seed);
        let cfg = BacktrackConfig::default();
        sliced_budget_matches_one_shot(|b, from| backtracking::solve_resumable(&inst, cfg, b, from));
        sliced_budget_matches_one_shot(|b, from| backtracking::count_resumable(&inst, cfg, b, from));
        // join: generic WCOJ count on the triangle query.
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, 3 * n, 5, seed);
        sliced_budget_matches_one_shot(|b, from| wcoj::count_resumable(&q, &db, None, b, from));
        // graphalg: triangle scan and clique enumeration.
        use lowerbounds::graphalg::triangle;
        sliced_budget_matches_one_shot(|b, from| triangle::count_triangles_resumable(&g, b, from));
        sliced_budget_matches_one_shot(|b, from| clique::find_clique_resumable(&g, 3, b, from));
    }

    /// Every solver family charges `RunStats.max_intermediate`: the
    /// high-water mark is monotone under doubling budgets (a longer run of
    /// the same deterministic trace can only observe a larger frontier) and
    /// nonzero on instances that force real search. `RunStats::le` excludes
    /// the mark, so this is the only place the charge itself is pinned.
    #[test]
    fn max_intermediate_charged_every_family(seed in 0u64..10_000, n in 4usize..7) {
        fn doubling_max_intermediate<W>(
            mut solve: impl FnMut(&Budget) -> (Outcome<W>, RunStats),
        ) -> u64 {
            let mut ticks = 1u64;
            let mut prev = 0u64;
            loop {
                let (out, stats) = solve(&Budget::ticks(ticks));
                assert!(
                    stats.max_intermediate >= prev,
                    "max_intermediate shrank when the budget grew: {prev} then {}",
                    stats.max_intermediate
                );
                prev = stats.max_intermediate;
                if !out.is_exhausted() {
                    return prev;
                }
                ticks = ticks.checked_mul(2).expect("budget overflow before completion");
            }
        }
        // sat: DPLL must stack a decision frame or a propagation trail.
        let f = sgen::random_ksat(n, 3 * n, 3.min(n), seed);
        let solver = DpllSolver::default();
        prop_assert!(doubling_max_intermediate(|b| solver.solve(&f, b)) > 0);
        // csp: backtracking pushes at least the first decision frame.
        let kg = generators::clique(n);
        let inst = lowerbounds::csp::generators::random_binary_csp(&kg, 2, 0.4, seed);
        let cfg = BacktrackConfig::default();
        prop_assert!(doubling_max_intermediate(|b| backtracking::solve(&inst, cfg, b)) > 0);
        // join: the WCOJ machine stacks a frame per bound variable.
        let q = JoinQuery::triangle();
        let db = jgen::random_binary_database(&q, 3 * n, 5, seed);
        prop_assert!(
            doubling_max_intermediate(|b| wcoj::count(&q, &db, None, b).expect("valid database")) > 0
        );
        // graphalg on K_n: every edge has a common neighbor, and the clique
        // machine extends a nonempty partial clique.
        use lowerbounds::graphalg::triangle;
        prop_assert!(doubling_max_intermediate(|b| triangle::count_triangles(&kg, b)) > 0);
        prop_assert!(doubling_max_intermediate(|b| clique::find_clique(&kg, 3, b)) > 0);
    }

    /// Clique search (brute and Nešetřil–Poljak): budget contract against
    /// the unlimited run.
    #[test]
    fn clique_budget_contract(seed in 0u64..10_000, n in 4usize..10, p in 0.3f64..0.8) {
        let g = generators::gnp(n, p, seed);
        let k = 3;
        prop_assert!(clique::find_clique(&g, k, &Budget::ticks(0)).0.is_exhausted());
        let oracle = clique::find_clique(&g, k, &Budget::unlimited()).0.is_sat();
        let verdict = doubling_budget_verdict(|b| clique::find_clique(&g, k, b), oracle);
        prop_assert_eq!(verdict, oracle);
        let vnp = doubling_budget_verdict(|b| clique::find_clique_neipol(&g, k, b), oracle);
        prop_assert_eq!(vnp, oracle);
    }
}
