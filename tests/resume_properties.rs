//! Property tests for the checkpoint/resume layer's core invariant, per
//! solver family: **splitting any budget into k slices and chaining
//! resumes yields the same verdict (and witness) and the same summed
//! [`RunStats`] as one uninterrupted run** — including when the
//! interruption point is chosen adversarially by a
//! [`FaultPlan`](lowerbounds::engine::FaultPlan) failpoint firing
//! mid-slice.
//!
//! Instances come from the `lb-chaos` hostile generators, so the shapes
//! exercised here include the degenerate ones (empty formulas, isolated
//! vertices, unit domains) that a friendly random generator underweights.
//! Every checkpoint crossing a slice boundary is round-tripped through its
//! byte encoding first: what resumes is exactly what would have been
//! persisted to disk.

use proptest::prelude::*;

use lb_chaos::hostile;
use lowerbounds::engine::checkpoint::{Checkpoint, ResumableOutcome};
use lowerbounds::engine::fault::with_plan;
use lowerbounds::engine::{Budget, FaultPlan, RunStats};
use lowerbounds::graphalg::{clique, triangle};
use lowerbounds::join::wcoj;

/// Upper bound on chained slices; each slice makes at least one op of
/// progress, so hitting this means the resume chain livelocked.
const MAX_SLICES: u64 = 200_000;

/// A resumable solver entry point: one budget slice, optionally
/// continuing from a checkpoint.
type Run<'a, W, E> =
    dyn FnMut(&Budget, Option<&Checkpoint>) -> Result<(ResumableOutcome<W>, RunStats), E> + 'a;

/// Runs `run` once, uninterrupted and fault-free; panics if it suspends.
fn one_shot<W, E: std::fmt::Debug>(run: &mut Run<'_, W, E>) -> (ResumableOutcome<W>, RunStats) {
    let (out, stats) = run(&Budget::unlimited(), None).expect("one-shot run errored");
    assert!(
        !out.is_suspended(),
        "suspended under an unlimited budget with no faults"
    );
    (out, stats)
}

/// Chains `run` through `slice_ticks`-sized slices until it completes,
/// round-tripping every checkpoint through bytes; with `fault_seed`, every
/// other slice additionally runs under a seeded [`FaultPlan`] so the
/// interruption point is adversarial rather than a clean budget boundary.
/// Returns the final outcome and the summed stats.
fn chained<W, E: std::fmt::Debug>(
    run: &mut Run<'_, W, E>,
    slice_ticks: u64,
    fault_seed: Option<u64>,
) -> (ResumableOutcome<W>, RunStats) {
    let mut from: Option<Checkpoint> = None;
    let mut summed = RunStats::default();
    let mut slices = 0u64;
    loop {
        slices += 1;
        assert!(slices <= MAX_SLICES, "no verdict after {MAX_SLICES} slices");
        let budget = Budget::ticks(slice_ticks);
        let plan = match fault_seed {
            Some(s) if slices % 2 == 1 => FaultPlan::from_seed(s.wrapping_add(slices)),
            _ => FaultPlan::new(),
        };
        let (out, stats) = with_plan(&plan, || run(&budget, from.as_ref())).expect("slice errored");
        summed.absorb(&stats);
        match out {
            ResumableOutcome::Suspended { checkpoint, .. } => {
                let bytes = checkpoint.to_bytes();
                from = Some(Checkpoint::from_bytes(&bytes).expect("round-trip failed"));
            }
            done => return (done, summed),
        }
    }
}

/// The invariant: one-shot and k-sliced runs agree on outcome (witness
/// included, via `PartialEq`) and on summed stats, with and without
/// adversarial mid-slice faults. Returns the one-shot outcome so callers
/// can additionally validate the witness.
fn assert_slice_equivalence<W: PartialEq + std::fmt::Debug, E: std::fmt::Debug>(
    run: &mut Run<'_, W, E>,
    k: u64,
    fault_seed: u64,
) -> ResumableOutcome<W> {
    let (full, full_stats) = one_shot(run);
    // Split the one-shot work into k equal slices (the last absorbs the
    // remainder by simply resuming until done).
    let slice_ticks = (full_stats.total_ops() / k).max(1);
    let (sliced, summed) = chained(run, slice_ticks, None);
    assert_eq!(sliced, full, "k={k} sliced verdict diverged");
    assert_eq!(summed, full_stats, "k={k} sliced stats diverged");
    let (faulted, faulted_stats) = chained(run, slice_ticks, Some(fault_seed));
    assert_eq!(faulted, full, "k={k} fault-sliced verdict diverged");
    // An injected PoisonIntermediate may pin a slice's `max_intermediate`
    // to u64::MAX; every tick counter must still match exactly.
    assert!(
        faulted_stats.eq_allowing_poisoned_intermediate(&full_stats),
        "k={k} fault-sliced stats diverged: {faulted_stats:?} vs {full_stats:?}"
    );
    full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DPLL on hostile CNF: slice equivalence plus witness validity.
    #[test]
    fn dpll_slice_equivalence(seed in 0u64..5_000, k_idx in 0usize..3) {
        let k = [2u64, 5, 16][k_idx];
        let f = hostile::cnf(seed);
        let solver = lowerbounds::sat::DpllSolver::default();
        let full = assert_slice_equivalence(
            &mut |b, from| solver.solve_resumable(&f, b, from),
            k,
            seed,
        );
        if let ResumableOutcome::Sat(m) = full {
            prop_assert!(f.eval(&m), "one-shot witness does not satisfy the formula");
        }
    }

    /// CSP backtracking (decision and counting) on hostile instances.
    #[test]
    fn csp_slice_equivalence(seed in 0u64..5_000, k_idx in 0usize..3) {
        let k = [2u64, 5, 16][k_idx];
        use lowerbounds::csp::solver::{backtracking, BacktrackConfig};
        let inst = hostile::csp(seed);
        let config = BacktrackConfig::default();
        let full = assert_slice_equivalence(
            &mut |b, from| backtracking::solve_resumable(&inst, config, b, from),
            k,
            seed,
        );
        if let ResumableOutcome::Sat(a) = full {
            prop_assert!(inst.eval(&a), "one-shot witness violates a constraint");
        }
        assert_slice_equivalence(
            &mut |b, from| backtracking::count_resumable(&inst, config, b, from),
            k,
            seed ^ 0xc0,
        );
    }

    /// Generic join (count and emptiness) on hostile query/database pairs.
    #[test]
    fn wcoj_slice_equivalence(seed in 0u64..5_000, k_idx in 0usize..3) {
        let k = [2u64, 5, 16][k_idx];
        let (q, db) = hostile::join_instance(seed);
        // Broken databases are the parser/validation differential's
        // concern; resume only applies to instances the solver accepts.
        if wcoj::count(&q, &db, None, &Budget::ticks(0)).is_err() {
            return Ok(());
        }
        assert_slice_equivalence(
            &mut |b, from| wcoj::count_resumable(&q, &db, None, b, from),
            k,
            seed,
        );
        assert_slice_equivalence(
            &mut |b, from| wcoj::is_empty_resumable(&q, &db, None, b, from),
            k,
            seed ^ 0xe5,
        );
    }

    /// Triangle scan (find and count) on hostile graphs.
    #[test]
    fn triangle_slice_equivalence(seed in 0u64..5_000, k_idx in 0usize..3) {
        let k = [2u64, 5, 16][k_idx];
        let g = hostile::graph(seed);
        let full = assert_slice_equivalence(
            &mut |b, from| triangle::find_triangle_naive_resumable(&g, b, from),
            k,
            seed,
        );
        if let ResumableOutcome::Sat([a, b, c]) = full {
            prop_assert!(
                g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c),
                "one-shot witness is not a triangle"
            );
        }
        assert_slice_equivalence(
            &mut |b, from| triangle::count_triangles_resumable(&g, b, from),
            k,
            seed ^ 0x7a,
        );
    }

    /// Clique enumeration (find and count, k = 3) on hostile graphs.
    #[test]
    fn clique_slice_equivalence(seed in 0u64..5_000, k_idx in 0usize..3) {
        let k = [2u64, 5, 16][k_idx];
        let g = hostile::graph(seed);
        let full = assert_slice_equivalence(
            &mut |b, from| clique::find_clique_resumable(&g, 3, b, from),
            k,
            seed,
        );
        if let ResumableOutcome::Sat(c) = full {
            prop_assert_eq!(c.len(), 3);
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    prop_assert!(g.has_edge(c[i], c[j]), "one-shot witness is not a clique");
                }
            }
        }
        assert_slice_equivalence(
            &mut |b, from| clique::count_cliques_resumable(&g, 3, b, from),
            k,
            seed ^ 0x3c,
        );
    }
}

/// The hostile fixture corpus (`crates/engine/fixtures/checkpoints/`) at
/// the *solver* layer: resuming from any fixture yields a typed
/// `CheckpointError` — never a panic, and never a `Sat`/`Unsat` verdict
/// conjured from a checkpoint that was corrupted, version-skewed, tagged
/// for another family, or carrying an undecodable payload.
#[test]
fn hostile_fixture_checkpoints_are_rejected_by_solvers() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/engine/fixtures/checkpoints");
    let f = hostile::cnf(7);
    let solver = lowerbounds::sat::DpllSolver::default();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir (run the corpus regenerator)") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ck") {
            continue;
        }
        seen += 1;
        let name = path.display();
        let loaded = catch_unwind(AssertUnwindSafe(|| Checkpoint::load(&path)))
            .unwrap_or_else(|_| panic!("{name}: load panicked"));
        let Ok(ck) = loaded else {
            continue; // rejected at the container layer: typed, done.
        };
        // Container-valid fixtures must be rejected by the solver itself.
        let resumed = catch_unwind(AssertUnwindSafe(|| {
            solver.solve_resumable(&f, &Budget::unlimited(), Some(&ck))
        }))
        .unwrap_or_else(|_| panic!("{name}: resume panicked"));
        assert!(
            resumed.is_err(),
            "{name}: solver produced a verdict from a hostile checkpoint"
        );
    }
    assert!(seen >= 8, "fixture corpus is missing files ({seen} found)");
}

/// The chaos harness's own resume differential (random slice sizes, 50%
/// fault-plan slices, byte round-trips) stays clean on a fresh seed range
/// not covered by the `lb-chaos resume` smoke configuration.
#[test]
fn chaos_resume_differential_is_clean() {
    for family in lb_chaos::Family::ALL {
        let report = lb_chaos::run_resume_family(family, 0x9000, 40, 0);
        if let Some(f) = report.failures.first() {
            panic!("{f}");
        }
    }
}
