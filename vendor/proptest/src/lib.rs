//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, integer/float
//! range strategies, a small regex-subset string strategy (`"[ab]{0,12}"`
//! style), and `prop_assert!` / `prop_assert_eq!`. Inputs are generated from a
//! deterministic per-test seed so failures reproduce; there is no shrinking —
//! the failing inputs are printed verbatim instead.
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Failure raised by `prop_assert!`-style macros inside a property test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl From<String> for TestCaseError {
    fn from(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl From<&str> for TestCaseError {
    fn from(msg: &str) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    //! Runner configuration (subset of upstream `proptest::test_runner`).

    /// How many random cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// A source of random test inputs (upstream: `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;
    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String strategy from a regex subset: concatenations of literal characters
/// and character classes `[a-z…]`, each optionally quantified by `{m}`,
/// `{m,n}`, `?`, `*`, or `+` (`*`/`+` capped at 16 repetitions).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                // lb-lint: allow(no-panic) -- test-harness code: a malformed strategy regex is a programmer error in a test
                .unwrap_or_else(|| panic!("unclosed [ in strategy regex {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range in strategy regex {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in strategy regex {pattern:?}");
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"(){}|.*+?".contains(c),
                "unsupported regex feature {c:?} in strategy {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi): (usize, usize) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                // lb-lint: allow(no-panic) -- test-harness code: a malformed strategy regex is a programmer error in a test
                .unwrap_or_else(|| panic!("unclosed {{ in strategy regex {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let bounds = match body.split_once(',') {
                Some((a, b)) => (parse_bound(&body, a), parse_bound(&body, b)),
                None => {
                    let m = parse_bound(&body, &body);
                    (m, m)
                }
            };
            i = close + 1;
            bounds
        } else if i < chars.len() && "?*+".contains(chars[i]) {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 16),
                _ => (1, 16),
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

fn parse_bound(body: &str, part: &str) -> usize {
    part.trim()
        .parse()
        // lb-lint: allow(no-panic) -- test-harness code: a malformed strategy regex is a programmer error in a test
        .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in strategy regex"))
}

/// Derives the deterministic base seed for a named property test.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `cases` generated cases of a property test body.
///
/// `gen_and_run` receives a seeded RNG and must generate its inputs, run the
/// body, and return `(description-of-inputs, body-result)`.
pub fn run_property_test<F>(
    test_name: &str,
    config: &test_runner::ProptestConfig,
    mut gen_and_run: F,
) where
    F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
{
    let base = seed_for(test_name);
    for case in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (inputs, result) = gen_and_run(&mut rng);
        if let Err(e) = result {
            // lb-lint: allow(no-panic) -- test-harness code: panicking is how a property-test failure reaches the test runner
            panic!("property `{test_name}` failed at case {case}/{}:\n  inputs: {inputs}\n  cause: {e}", config.cases);
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}\n  at {}:{}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}\n  at {}:{}",
                stringify!($lhs),
                stringify!($rhs),
                format!($($fmt)*),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection bookkeeping: an assumed-away case simply passes.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // Without: use the default config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*
        );
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property_test(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        if !s.is_empty() { s.push_str(", "); }
                        s.push_str(&format!("{} = {:?}", stringify!($arg), $arg));
                    )+
                    s
                };
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (inputs, result)
            });
        }
    )*};
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..8, x in -5i64..=5, p in 0.25f64..0.75) {
            prop_assert!((3..8).contains(&n));
            prop_assert!((-5..=5).contains(&x));
            prop_assert!((0.25..=0.75).contains(&p));
        }

        #[test]
        fn early_return_ok(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(a in 0u64..10, b in 0u64..10) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = super::sample_regex("[ab]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
        let t = super::sample_regex("x[0-9]{2}y?", &mut rng);
        assert!(t.starts_with('x'));
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
