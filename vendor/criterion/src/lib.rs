//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`) with a simple
//! median-of-samples timer instead of criterion's full statistical machinery.
//! Good enough to rank implementations and catch order-of-magnitude
//! regressions without network access.
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark's display identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_count` samples of one call each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| routine(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| routine(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        routine(&mut bencher);
        let median = bencher.median();
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name, id, median, self.sample_size
        );
    }

    /// Finishes the group (reporting is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from(name), &mut routine);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        for n in [4u64, 8] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
