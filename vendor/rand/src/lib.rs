//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io. This crate re-implements exactly the API subset the
//! workspace uses — `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool` — on top of a SplitMix64 generator. Streams differ from
//! upstream `rand`, which is fine: the workspace only relies on seeds for
//! reproducibility, never on specific values.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A value that can be sampled uniformly from the generator's full output
/// range (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type that can be sampled uniformly from a sub-range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                if span >= u128::from(u64::MAX) {
                    // Full-width range (only possible when low is the type
                    // minimum): every u64 word maps to a distinct value.
                    return (low as $wide).wrapping_add(rng.next_u64() as $wide) as $t;
                }
                // Modulo sampling; bias is negligible for the small spans used
                // by test/bench workloads.
                let r = u128::from(rng.next_u64()) % (span + 1);
                ((low as $wide).wrapping_add(r as $wide)) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit = f64::sample(rng);
        low + unit * (high - low)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HalfOpen> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Sampling from half-open `low..high` ranges (exclusive upper bound).
pub trait HalfOpen: SampleUniform {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! half_open_int {
    ($($t:ty),*) => {$(
        impl HalfOpen for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                Self::sample_inclusive(rng, low, high - 1)
            }
        }
    )*};
}
half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpen for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        Self::sample_inclusive(rng, low, high)
    }
}

/// The user-facing random-number interface (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator constructible from a seed (subset of upstream `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64). Statistically solid for test and
    /// benchmark workloads; not cryptographic, exactly like upstream's note.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..8);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let c = rng.gen_range(b'a'..=b'd');
            assert!((b'a'..=b'd').contains(&c));
            let f = rng.gen_range(0.2f64..0.6);
            assert!((0.2..=0.6).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            seen_low |= f < 0.5;
            seen_high |= f >= 0.5;
        }
        assert!(seen_low && seen_high, "degenerate f64 stream");
    }

    #[test]
    fn bools_vary() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "biased bool stream: {trues}");
    }
}
